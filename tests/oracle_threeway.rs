//! True three-way differential oracle on one execution: Velodrome (online
//! graph search), AeroDrome (vector clocks), and DoubleChecker single-run
//! (dual-analysis) all consume the same replayed deterministic
//! interleaving, with the offline trace oracle recorded by a [`Tee`] in
//! the *same run* as Velodrome. The two online checkers must agree bit
//! for bit on violation keys and blame; all of them must agree on
//! violation existence. The suite also pins the pure-performance-change
//! equivalences (pipelining, transports, sharding, observability) of the
//! DoubleChecker configuration space.

mod common;

use common::{
    aerodrome_verdict, assert_three_way, scrub_collected, velodrome_verdict_with_trace,
    violation_keys,
};
use dc_core::{run_doublechecker, run_single, DcConfig, ExecPlan, OpTransport};
use dc_pcd::{analyze_trace, OfflineConfig};
use dc_runtime::engine::det::Schedule;
use dc_workloads::{all, Scale};
use doublechecker_repro as _;

#[test]
fn all_three_checkers_agree_across_the_suite() {
    for wl in all(Scale::Tiny) {
        let spec = dc_core::initial_spec(&wl.program, &wl.extra_exclusions);
        for seed in 0..2u64 {
            let schedule = Schedule::random(seed);
            let ctx = format!("{} seed {seed}", wl.name);
            assert_three_way(&ctx, &wl.program, &spec, &schedule);
        }
    }
}

/// The three-way agreement must survive every analysis-pipeline
/// configuration: the DoubleChecker leg re-runs pipelined under shards
/// ∈ {1, 2} and both op transports, and each variant must (a) agree with
/// the online checkers on existence and (b) report the same deduplicated
/// violation set as every other variant.
#[test]
fn three_way_agreement_holds_under_shards_and_transports() {
    for wl in all(Scale::Tiny) {
        let spec = dc_core::initial_spec(&wl.program, &wl.extra_exclusions);
        let schedule = Schedule::random(0);
        let (velo, _) = velodrome_verdict_with_trace(&wl.program, &spec, &schedule);
        let aero = aerodrome_verdict(&wl.program, &spec, &schedule);
        assert_eq!(velo, aero, "{}: velodrome vs aerodrome", wl.name);

        let plan = ExecPlan::Det(schedule);
        let base = DcConfig::single_run(plan.coordination()).with_pipelined(true);
        let mut baseline_keys = None;
        for shards in [1u32, 2] {
            for transport in [OpTransport::Ring, OpTransport::Channel] {
                let config = base
                    .clone()
                    .with_shards(shards)
                    .with_op_transport(transport);
                let report = run_doublechecker(&wl.program, &spec, config, &plan).unwrap();
                let ctx = format!("{} shards {shards} transport {transport:?}", wl.name);
                assert_eq!(
                    velo.found(),
                    !report.violations.is_empty(),
                    "{ctx}: online checkers vs doublechecker (existence)"
                );
                assert_eq!(
                    report.pipeline_error, None,
                    "{ctx}: healthy run must not report a pipeline error"
                );
                let keys = violation_keys(&report);
                match &baseline_keys {
                    None => baseline_keys = Some(keys),
                    Some(b) => assert_eq!(b, &keys, "{ctx}: violation set drifted"),
                }
            }
        }
    }
}

/// The asynchronous analysis pipeline must be a pure performance change:
/// on the same deterministic schedule, the pipelined configuration produces
/// the same deduplicated violation set and the same static transaction
/// information as the synchronous single-run — while never taking the graph
/// mutex on application threads.
#[test]
fn pipelined_single_run_matches_synchronous_across_the_suite() {
    for wl in all(Scale::Tiny) {
        let spec = dc_core::initial_spec(&wl.program, &wl.extra_exclusions);
        for seed in 0..2u64 {
            let plan = ExecPlan::Det(Schedule::random(seed));
            let sync = run_single(&wl.program, &spec, &plan).unwrap();
            let piped = run_doublechecker(
                &wl.program,
                &spec,
                DcConfig::single_run(plan.coordination()).with_pipelined(true),
                &plan,
            )
            .unwrap();

            assert_eq!(
                violation_keys(&sync),
                violation_keys(&piped),
                "{} seed {seed}: sync vs pipelined violation sets",
                wl.name
            );
            assert_eq!(
                sync.static_info, piped.static_info,
                "{} seed {seed}: sync vs pipelined static transaction info",
                wl.name
            );
            assert_eq!(
                piped.stats.graph_locks, 0,
                "{} seed {seed}: pipelined application threads must not lock the graph",
                wl.name
            );
        }
    }
}

/// The op transport is a pure performance change: the fixed-capacity ring
/// and the legacy unbounded channel must produce identical deduplicated
/// violations, static transaction information, and statistics (modulo the
/// collector's timing-dependent reclaim count) on the same deterministic
/// schedule.
#[test]
fn ring_and_channel_transports_are_bit_identical_across_the_suite() {
    for wl in all(Scale::Tiny) {
        let spec = dc_core::initial_spec(&wl.program, &wl.extra_exclusions);
        for seed in 0..2u64 {
            let plan = ExecPlan::Det(Schedule::random(seed));
            let base = DcConfig::single_run(plan.coordination()).with_pipelined(true);
            let ring = run_doublechecker(
                &wl.program,
                &spec,
                base.clone().with_op_transport(OpTransport::Ring),
                &plan,
            )
            .unwrap();
            let chan = run_doublechecker(
                &wl.program,
                &spec,
                base.with_op_transport(OpTransport::Channel),
                &plan,
            )
            .unwrap();
            let ctx = format!("{} seed {seed}", wl.name);
            assert_eq!(
                violation_keys(&ring),
                violation_keys(&chan),
                "{ctx}: ring vs channel violations"
            );
            assert_eq!(
                ring.static_info, chan.static_info,
                "{ctx}: ring vs channel static transaction info"
            );
            assert_eq!(
                scrub_collected(ring.stats),
                scrub_collected(chan.stats),
                "{ctx}: ring vs channel stats"
            );
        }
    }
}

/// Sharding the IDG by connected component is a pure performance change:
/// shards 1 (the classic single graph owner), 2, and 4 must produce
/// identical deduplicated violations, static transaction information, and
/// statistics (modulo the per-shard collector's timing-dependent reclaim
/// count) on the same deterministic schedule.
#[test]
fn sharded_idg_is_bit_identical_across_the_suite() {
    for wl in all(Scale::Tiny) {
        let spec = dc_core::initial_spec(&wl.program, &wl.extra_exclusions);
        for seed in 0..2u64 {
            let plan = ExecPlan::Det(Schedule::random(seed));
            let base = DcConfig::single_run(plan.coordination()).with_pipelined(true);
            let run = |shards: u32| {
                run_doublechecker(&wl.program, &spec, base.clone().with_shards(shards), &plan)
                    .unwrap()
            };
            let single = run(1);
            for shards in [2u32, 4] {
                let sharded = run(shards);
                let ctx = format!("{} seed {seed} shards {shards}", wl.name);
                assert_eq!(
                    violation_keys(&single),
                    violation_keys(&sharded),
                    "{ctx}: single-owner vs sharded violations"
                );
                assert_eq!(
                    single.static_info, sharded.static_info,
                    "{ctx}: single-owner vs sharded static transaction info"
                );
                assert_eq!(
                    scrub_collected(single.stats),
                    scrub_collected(sharded.stats),
                    "{ctx}: single-owner vs sharded stats"
                );
                assert_eq!(
                    sharded.pipeline_error, None,
                    "{ctx}: healthy run must not report a pipeline error"
                );
            }
        }
    }
}

/// The Octet ownership inline cache is a pure performance change: a cache
/// hit must classify exactly the accesses the metadata word would classify
/// as same-state, so disabling the cache on the same deterministic schedule
/// — across shards ∈ {1, 2} and both op transports — must reproduce the
/// violation set, static transaction information, and statistics bit for
/// bit (modulo the collector's timing-dependent reclaim count).
#[test]
fn barrier_cache_on_and_off_are_bit_identical_across_the_suite() {
    for wl in all(Scale::Tiny) {
        let spec = dc_core::initial_spec(&wl.program, &wl.extra_exclusions);
        for seed in 0..2u64 {
            let plan = ExecPlan::Det(Schedule::random(seed));
            let base = DcConfig::single_run(plan.coordination()).with_pipelined(true);
            for shards in [1u32, 2] {
                for transport in [OpTransport::Ring, OpTransport::Channel] {
                    let variant = base
                        .clone()
                        .with_shards(shards)
                        .with_op_transport(transport);
                    let on = run_doublechecker(
                        &wl.program,
                        &spec,
                        variant.clone().with_barrier_cache(true),
                        &plan,
                    )
                    .unwrap();
                    let off = run_doublechecker(
                        &wl.program,
                        &spec,
                        variant.with_barrier_cache(false),
                        &plan,
                    )
                    .unwrap();
                    let ctx = format!(
                        "{} seed {seed} shards {shards} transport {transport:?}",
                        wl.name
                    );
                    assert_eq!(
                        violation_keys(&on),
                        violation_keys(&off),
                        "{ctx}: cache-on vs cache-off violations"
                    );
                    assert_eq!(
                        on.static_info, off.static_info,
                        "{ctx}: cache-on vs cache-off static transaction info"
                    );
                    assert_eq!(
                        scrub_collected(on.stats),
                        scrub_collected(off.stats),
                        "{ctx}: cache-on vs cache-off stats"
                    );
                    assert_eq!(
                        off.pipeline_error, None,
                        "{ctx}: healthy run must not report a pipeline error"
                    );
                }
            }
        }
    }
}

/// Observability is a pure observer: with every instrumentation site live
/// (`ObsLevel::Full`) the analysis artefacts — violations, static
/// transaction information, statistics — are identical to the
/// uninstrumented (`ObsLevel::Off`) run on the same deterministic schedule,
/// in both the synchronous and the pipelined configuration.
#[test]
fn observability_full_vs_off_is_bit_identical_across_the_suite() {
    use dc_core::ObsLevel;
    for wl in all(Scale::Tiny) {
        let spec = dc_core::initial_spec(&wl.program, &wl.extra_exclusions);
        for seed in 0..2u64 {
            for pipelined in [false, true] {
                let plan = ExecPlan::Det(Schedule::random(seed));
                let base = DcConfig::single_run(plan.coordination()).with_pipelined(pipelined);
                let off = run_doublechecker(
                    &wl.program,
                    &spec,
                    base.clone().with_observability(ObsLevel::Off),
                    &plan,
                )
                .unwrap();
                let full = run_doublechecker(
                    &wl.program,
                    &spec,
                    base.with_observability(ObsLevel::Full),
                    &plan,
                )
                .unwrap();
                let ctx = format!("{} seed {seed} pipelined {pipelined}", wl.name);
                assert!(off.pipeline.is_none(), "{ctx}: off must report nothing");
                assert!(full.pipeline.is_some(), "{ctx}: full must report");
                if pipelined {
                    // Replay-pool workers race for SCCs, so which dynamic
                    // instance represents each deduplicated violation — and
                    // the collector's timing-dependent reclaim count — may
                    // differ between runs; the violation *set* (by static
                    // key) and everything else must match bit for bit.
                    assert_eq!(
                        violation_keys(&off),
                        violation_keys(&full),
                        "{ctx}: violations"
                    );
                    assert_eq!(
                        scrub_collected(off.stats),
                        scrub_collected(full.stats),
                        "{ctx}: stats"
                    );
                } else {
                    assert_eq!(off.violations, full.violations, "{ctx}: violations");
                    assert_eq!(off.stats, full.stats, "{ctx}: stats");
                }
                assert_eq!(off.static_info, full.static_info, "{ctx}: static info");
            }
        }
    }
}

/// The oracle also validates the blame direction on a canonical case.
#[test]
fn oracle_blames_the_cycle_completer() {
    use dc_runtime::ids::{MethodId, ObjId, ThreadId};
    use dc_runtime::trace::TraceEvent;
    let events = vec![
        TraceEvent::Enter(ThreadId(0), MethodId(0)),
        TraceEvent::Write(ThreadId(0), ObjId(0), 0),
        TraceEvent::Enter(ThreadId(1), MethodId(1)),
        TraceEvent::Read(ThreadId(1), ObjId(0), 0), // edge 0 → 1 (first out of tx0)
        TraceEvent::Write(ThreadId(1), ObjId(0), 1),
        TraceEvent::Read(ThreadId(0), ObjId(0), 1), // edge 1 → 0 closes the cycle
        TraceEvent::Exit(ThreadId(1), MethodId(1)),
        TraceEvent::Exit(ThreadId(0), MethodId(0)),
    ];
    let report = analyze_trace(
        &events,
        &dc_runtime::spec::AtomicitySpec::all_atomic(),
        OfflineConfig::default(),
    );
    assert_eq!(report.violations.len(), 1);
    assert_eq!(
        report.violations[0].blamed_methods(),
        vec![MethodId(0)],
        "the transaction whose outgoing edge came first is blamed"
    );
}

/// AeroDrome agrees with the offline oracle on the canonical blame case:
/// the same two-transaction interleaving, executed for real, blames the
/// transaction whose outgoing edge came first.
#[test]
fn aerodrome_blames_the_cycle_completer() {
    use dc_runtime::heap::ObjKind;
    use dc_runtime::ids::ThreadId;
    use dc_runtime::program::{Op, ProgramBuilder};

    let mut b = ProgramBuilder::new();
    let x = b.object(ObjKind::Plain { fields: 2 });
    // m0: W(x.0) then R(x.1); m1: R(x.0) then W(x.1).
    let m0 = b.method("m0", vec![Op::Write(x, 0), Op::Read(x, 1)]);
    let m1 = b.method("m1", vec![Op::Read(x, 0), Op::Write(x, 1)]);
    let e0 = b.method("e0", vec![Op::Call(m0)]);
    let e1 = b.method("e1", vec![Op::Call(m1)]);
    b.thread(e0);
    b.thread(e1);
    let program = b.build().unwrap();
    let spec = dc_runtime::spec::AtomicitySpec::excluding(vec![e0, e1]);

    // Thread 0 writes x.0, thread 1 runs its whole transaction (reading
    // x.0 — edge m0→m1 — and writing x.1), then thread 0 reads x.1,
    // closing the cycle with edge m1→m0.
    let script = vec![
        ThreadId(0), // Enter e0
        ThreadId(0), // Enter m0
        ThreadId(0), // Write x.0
        ThreadId(1), // Enter e1
        ThreadId(1), // Enter m1
        ThreadId(1), // Read x.0  (edge m0 → m1, first out of m0)
        ThreadId(1), // Write x.1
        ThreadId(0), // Read x.1  (edge m1 → m0 closes the cycle)
    ];
    let aero = common::aerodrome_verdict(&program, &spec, &Schedule::Scripted(script));
    assert_eq!(aero.keys.len(), 1, "one deduplicated violation");
    assert_eq!(
        aero.blames.iter().next().unwrap(),
        &vec![m0],
        "the transaction whose outgoing edge came first is blamed"
    );
}
