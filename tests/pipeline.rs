//! End-to-end pipeline tests spanning all crates: workloads → engines →
//! checkers → violations.

use dc_core::{run_doublechecker, run_multi, run_single, DcConfig, ExecPlan};
use dc_runtime::engine::det::Schedule;
use dc_runtime::spec::AtomicitySpec;
use dc_velodrome::{Velodrome, VelodromeConfig};
use dc_workloads::{all, by_name, Scale, Workload};
use doublechecker_repro as _;

fn spec_of(wl: &Workload) -> AtomicitySpec {
    dc_core::initial_spec(&wl.program, &wl.extra_exclusions)
}

fn velodrome_violations(wl: &Workload, spec: &AtomicitySpec, seed: u64) -> usize {
    let v = Velodrome::new(
        wl.program.threads.len(),
        spec.clone(),
        VelodromeConfig::default(),
    );
    dc_runtime::engine::det::run_det(&wl.program, &v, &Schedule::random(seed)).unwrap();
    v.violations().len()
}

fn doublechecker_violations(wl: &Workload, spec: &AtomicitySpec, seed: u64) -> usize {
    let report = run_single(&wl.program, spec, &ExecPlan::Det(Schedule::random(seed))).unwrap();
    report.violations.len()
}

/// The paper's central soundness/precision claim, checked differentially:
/// on the *same execution* (same deterministic schedule), Velodrome and
/// DoubleChecker's single-run mode — both sound and precise — must agree on
/// whether any violation exists.
#[test]
fn velodrome_and_single_run_agree_on_violation_existence() {
    for wl in all(Scale::Tiny) {
        let spec = spec_of(&wl);
        for seed in 0..3u64 {
            let v = velodrome_violations(&wl, &spec, seed);
            let d = doublechecker_violations(&wl, &spec, seed);
            assert_eq!(
                v > 0,
                d > 0,
                "{} seed {seed}: velodrome found {v}, doublechecker found {d}",
                wl.name
            );
        }
    }
}

/// Clean benchmarks (properly synchronized by construction) must report no
/// violations under any schedule — the precision check.
#[test]
fn clean_workloads_report_no_violations() {
    for name in [
        "philo",
        "sor",
        "moldyn",
        "raytracer",
        "jython9",
        "luindex9",
        "pmd9",
    ] {
        let wl = by_name(name, Scale::Tiny).unwrap();
        let spec = spec_of(&wl);
        for seed in 0..5u64 {
            assert_eq!(
                doublechecker_violations(&wl, &spec, seed),
                0,
                "{name} must be violation-free (seed {seed})"
            );
            assert_eq!(
                velodrome_violations(&wl, &spec, seed),
                0,
                "{name} must be violation-free under velodrome (seed {seed})"
            );
        }
    }
}

/// Seeded-racy benchmarks must manifest violations under at least one of a
/// handful of schedules — the detection check.
#[test]
fn racy_workloads_manifest_violations() {
    for name in [
        "eclipse6", "hsqldb6", "xalan6", "avrora9", "tsp", "elevator", "hedc",
    ] {
        let wl = by_name(name, Scale::Tiny).unwrap();
        let spec = spec_of(&wl);
        let found = (0..8u64).any(|seed| doublechecker_violations(&wl, &spec, seed) > 0);
        assert!(found, "{name} should manifest at least one violation");
    }
}

/// Multi-run mode end to end on a racy workload: the first runs identify
/// the racy methods; the second run catches violations.
#[test]
fn multi_run_mode_catches_violations_on_tsp() {
    let wl = by_name("tsp", Scale::Tiny).unwrap();
    let spec = spec_of(&wl);
    let firsts: Vec<ExecPlan> = (0..6).map(|s| ExecPlan::Det(Schedule::random(s))).collect();
    let report = run_multi(
        &wl.program,
        &spec,
        &firsts,
        &ExecPlan::Det(Schedule::random(2)),
    )
    .unwrap();
    assert!(
        !report.static_info.methods.is_empty(),
        "first runs identify methods in imprecise cycles"
    );
    // The second run instruments fewer (or equal) accesses than single-run.
    let single = run_single(&wl.program, &spec, &ExecPlan::Det(Schedule::random(2))).unwrap();
    let second = &report.second_run;
    assert!(
        second.stats.regular_accesses + second.stats.unary_accesses
            <= single.stats.regular_accesses + single.stats.unary_accesses
    );
}

/// The acceptance counter for the asynchronous pipeline: in pipelined mode
/// application threads enqueue graph operations instead of locking the
/// graph, so `graph_locks` (hot-path graph-mutex acquisitions by app
/// threads) is zero; the synchronous path takes the lock on every edge
/// event and transaction boundary.
#[test]
fn pipelined_mode_removes_graph_locks_from_application_threads() {
    let wl = by_name("tsp", Scale::Tiny).unwrap();
    let spec = spec_of(&wl);
    let plan = ExecPlan::Det(Schedule::random(1));
    let sync = run_doublechecker(
        &wl.program,
        &spec,
        DcConfig::single_run(plan.coordination()),
        &plan,
    )
    .unwrap();
    let piped = run_doublechecker(
        &wl.program,
        &spec,
        DcConfig::single_run(plan.coordination()).with_pipelined(true),
        &plan,
    )
    .unwrap();
    assert!(
        sync.stats.graph_locks > 0,
        "synchronous mode locks the graph on the hot path"
    );
    assert_eq!(
        piped.stats.graph_locks, 0,
        "pipelined mode must keep app threads off the graph mutex"
    );
    // Same analysis results either way.
    assert_eq!(sync.stats.regular_txs, piped.stats.regular_txs);
    assert_eq!(sync.stats.idg_cross_edges, piped.stats.idg_cross_edges);
    assert_eq!(sync.stats.icd_sccs, piped.stats.icd_sccs);
}

/// Pipelined single-run under real OS threads: the full pipeline (app
/// threads → graph owner → PCD pool) shuts down cleanly and produces a
/// complete report.
#[test]
fn pipelined_mode_is_stable_on_real_threads() {
    let wl = by_name("tsp", Scale::Tiny).unwrap();
    let spec = spec_of(&wl);
    let report = run_doublechecker(
        &wl.program,
        &spec,
        DcConfig::single_run(ExecPlan::Real.coordination()).with_pipelined(true),
        &ExecPlan::Real,
    )
    .unwrap();
    assert!(report.stats.regular_txs > 0);
    assert!(report.stats.log_entries > 0);
    assert_eq!(report.stats.graph_locks, 0);
}

/// xalan6's signature behaviour (§5.3): many imprecise SCCs whose precise
/// replay finds *no* cycle — pure ICD false positives from object-granular
/// ping-pong, all filtered by PCD.
#[test]
fn xalan6_produces_imprecise_sccs_filtered_by_pcd() {
    let wl = by_name("xalan6", Scale::Tiny).unwrap();
    // Restrict to the serializable part: exclude the genuinely racy methods
    // so every SCC is imprecise-only.
    let mut spec = spec_of(&wl);
    for (i, m) in wl.program.methods.iter().enumerate() {
        if m.name.contains("racyUpdate") {
            spec.exclude(dc_runtime::ids::MethodId::from_index(i));
        }
    }
    let mut total_sccs = 0;
    for seed in 0..5u64 {
        let report =
            run_single(&wl.program, &spec, &ExecPlan::Det(Schedule::random(seed))).unwrap();
        total_sccs += report.stats.icd_sccs;
        assert!(
            report.violations.is_empty(),
            "ping-pong is serializable; PCD must filter all SCCs (seed {seed})"
        );
    }
    assert!(total_sccs > 0, "object-granularity creates imprecise SCCs");
}

/// The first run of multi-run mode records no logs; single-run records
/// plenty (its key cost, §3.1).
#[test]
fn logging_cost_is_single_run_only() {
    let wl = by_name("hsqldb6", Scale::Tiny).unwrap();
    let spec = spec_of(&wl);
    let plan = ExecPlan::Det(Schedule::random(1));
    let single = run_single(&wl.program, &spec, &plan).unwrap();
    let first = run_doublechecker(
        &wl.program,
        &spec,
        DcConfig::first_run(plan.coordination()),
        &plan,
    )
    .unwrap();
    assert!(single.stats.log_entries > 0);
    assert_eq!(first.stats.log_entries, 0);
}

/// lusearch9's cycles involve only regular transactions, so the second run
/// skips non-transactional instrumentation (paper §5.5).
#[test]
fn lusearch9_second_run_skips_unary_instrumentation() {
    let wl = by_name("lusearch9", Scale::Tiny).unwrap();
    let spec = spec_of(&wl);
    let firsts: Vec<ExecPlan> = (0..8).map(|s| ExecPlan::Det(Schedule::random(s))).collect();
    let report = run_multi(
        &wl.program,
        &spec,
        &firsts,
        &ExecPlan::Det(Schedule::random(0)),
    )
    .unwrap();
    // Whether unary transactions join cycles is execution-dependent; the
    // mechanism under test is the conditional instrumentation: no unary
    // involvement in the first runs ⇒ no unary instrumentation in the
    // second run.
    if !report.static_info.any_unary {
        assert_eq!(report.second_run.stats.unary_accesses, 0);
    } else {
        assert!(
            report.second_run.stats.unary_accesses > 0 || report.static_info.methods.is_empty()
        );
    }
}
