//! Reproduces the paper's **Figure 3** end to end: seven threads executing
//! transactions, the IDG edges ICD adds for conflicting / upgrading / fence
//! transitions, the size-4 SCC detected when Tx1i ends, and PCD finding the
//! *precise* cycle of just Tx1i and Tx3k — with Tx1i blamed (§3.3).
//!
//! The test acts as the execution engine itself, invoking the checker hooks
//! in exactly the figure's interleaving (every thread is at a safe point
//! between hooks, which is what `CoordinationMode::Immediate` encodes).

use dc_core::{DcConfig, DoubleChecker};
use dc_octet::CoordinationMode;
use dc_runtime::checker::Checker;
use dc_runtime::heap::{Heap, ObjKind};
use dc_runtime::ids::{MethodId, ObjId, ThreadId};
use dc_runtime::spec::AtomicitySpec;
use doublechecker_repro as _;

const O: ObjId = ObjId(0); // fields f=0, g=1, h=2
const P: ObjId = ObjId(1); // fields q=0, r=1
const F: u32 = 0;
const G: u32 = 1;
const H: u32 = 2;
const Q: u32 = 0;
const R: u32 = 1;

fn t(i: u16) -> ThreadId {
    ThreadId(i)
}

fn m(i: u16) -> MethodId {
    MethodId(u32::from(i))
}

#[test]
fn figure3_icd_scc_and_precise_cycle() {
    let checker = DoubleChecker::new(
        8,
        AtomicitySpec::all_atomic(),
        DcConfig::single_run(CoordinationMode::Immediate),
    );
    let heap = Heap::new(
        &[ObjKind::Plain { fields: 3 }, ObjKind::Plain { fields: 2 }],
        8,
    );
    checker.run_begin(&heap);
    for i in 1..=7 {
        checker.thread_begin(t(i));
        checker.enter_method(t(i), m(i)); // Tx1i … Tx7y, one per thread
    }

    // Right half of the figure first: p's history establishes gLastRdSh.
    checker.write(t(7), P, Q); // T7: wr p.q (WrEx T7)
    checker.read(t(6), P, R); // T6: rd p.r — conflicting, RdEx(T6); T6.lastRdEx = Tx6n
    checker.read(t(5), P, R); // T5: rd p.r — upgrading to RdSh(c); gLastRdSh = Tx5m

    // Left half: o's history.
    checker.write(t(1), O, F); // T1: wr o.f (WrEx T1)
    checker.read(t(2), O, G); // T2: rd o.g — conflicting: edge Tx1i → Tx2j
    checker.read(t(3), O, F); // T3: rd o.f — upgrading: edges Tx2j → Tx3k and Tx5m → Tx3k
    checker.read(t(4), O, H); // T4: rd o.h — fence: edge Tx3k → Tx4l
    checker.read(t(4), P, Q); // T4: rd p.q — no fence (T4 saw the newer counter)

    // T1 writes o.f again: conflicting RdSh → WrEx, edges from all threads'
    // current transactions to Tx1i — closing the imprecise cycle. The
    // precise cycle is already present: Tx1i's first write → Tx3k's read
    // (W–R) and Tx3k's read → this write (R–W).
    checker.write(t(1), O, F);

    // Finish every other transaction, then Tx1i last: ICD detects the SCC
    // when Tx1i ends (§3.2.3) and hands it to PCD.
    for i in [2u16, 3, 4, 5, 6, 7] {
        checker.exit_method(t(i), m(i));
    }
    checker.exit_method(t(1), m(1));
    for i in 1..=7 {
        checker.thread_end(t(i));
    }
    checker.run_end();

    let stats = checker.stats();
    assert!(stats.icd_sccs >= 1, "ICD detects the imprecise cycle");
    assert!(
        stats.idg_cross_edges >= 6,
        "conflicting + upgrading + fence edges are all present (got {})",
        stats.idg_cross_edges
    );

    let violations = checker.violations();
    assert_eq!(violations.len(), 1, "exactly one precise violation");
    let v = &violations[0];
    assert_eq!(
        v.cycle.len(),
        2,
        "PCD's precise cycle is smaller than the imprecise SCC"
    );
    let threads: Vec<ThreadId> = v.cycle.iter().map(|c| c.thread).collect();
    assert!(
        threads.contains(&t(1)) && threads.contains(&t(3)),
        "{threads:?}"
    );
    // Blame assignment: Tx1i's outgoing edge (its first write happened
    // before Tx3k's reads) precedes its incoming edge — Tx1i is blamed.
    let blamed_threads: Vec<ThreadId> = v
        .blamed
        .iter()
        .filter_map(|tx| v.cycle.iter().find(|c| c.tx == *tx))
        .map(|c| c.thread)
        .collect();
    assert_eq!(blamed_threads, vec![t(1)], "PCD blames Tx1i");
}

/// The §3.2.3 variant: "if Tx3k did not execute rd o.f, ICD would still
/// detect an imprecise cycle, but PCD would not detect a precise cycle
/// since none exists."
#[test]
fn figure3_without_tx3k_read_is_imprecise_only() {
    let checker = DoubleChecker::new(
        8,
        AtomicitySpec::all_atomic(),
        DcConfig::single_run(CoordinationMode::Immediate),
    );
    let heap = Heap::new(
        &[ObjKind::Plain { fields: 3 }, ObjKind::Plain { fields: 2 }],
        8,
    );
    checker.run_begin(&heap);
    for i in 1..=7 {
        checker.thread_begin(t(i));
        checker.enter_method(t(i), m(i));
    }
    checker.write(t(7), P, Q);
    checker.read(t(6), P, R);
    checker.read(t(5), P, R);
    checker.write(t(1), O, F);
    checker.read(t(2), O, G); // conflicting: edge Tx1i → Tx2j
                              // (Tx3k does not read o.f)
    checker.read(t(4), O, H); // conflicting (o is RdEx(T2) → this read upgrades)
    checker.read(t(4), P, Q);
    checker.write(t(1), O, F); // closes an imprecise cycle via Tx2j/Tx4l
    for i in [2u16, 3, 4, 5, 6, 7] {
        checker.exit_method(t(i), m(i));
    }
    checker.exit_method(t(1), m(1));
    for i in 1..=7 {
        checker.thread_end(t(i));
    }
    checker.run_end();

    assert!(
        checker.stats().icd_sccs >= 1,
        "imprecise cycle still detected"
    );
    assert!(
        checker.violations().is_empty(),
        "PCD filters the imprecise cycle: no precise violation exists"
    );
}
