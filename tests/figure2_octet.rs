//! Reproduces the paper's **Figure 2** exactly: six threads accessing
//! shared objects `o` and `p`, and the Octet state transitions they
//! trigger, including the transitive-fence reasoning for T5.

use dc_octet::{BarrierOutcome, CoordinationMode, DecodedState, NullSink, OctetState, Protocol};
use dc_runtime::ids::{ObjId, ThreadId};
use doublechecker_repro as _;

const O: ObjId = ObjId(0);
const P: ObjId = ObjId(1);

fn thread(i: u16) -> ThreadId {
    ThreadId(i)
}

#[test]
fn figure2_state_transitions() {
    let octet = Protocol::new(2, 7, CoordinationMode::Immediate, NullSink);
    for i in 1..=6 {
        octet.thread_begin(thread(i));
    }

    // T1: wr o.f → WrEx(T1).
    octet.write_barrier(thread(1), O);
    assert_eq!(
        octet.state_of(O),
        DecodedState::Stable(OctetState::WrEx(thread(1)))
    );

    // T2: rd o.f → conflicting transition to RdEx(T2); the coordination
    // protocol establishes a happens-before with T1.
    assert!(matches!(
        octet.read_barrier(thread(2), O),
        BarrierOutcome::Conflicting { new: OctetState::RdEx(t), .. } if t == thread(2)
    ));

    // Background for p (right half of the figure): T6 writes p, T5 reads it
    // (RdEx), then T6 reads again → p upgrades to RdSh with the first
    // counter value.
    octet.write_barrier(thread(6), P);
    assert!(matches!(
        octet.read_barrier(thread(5), P),
        BarrierOutcome::Conflicting {
            new: OctetState::RdEx(_),
            ..
        }
    ));
    let p_counter = match octet.read_barrier(thread(6), P) {
        BarrierOutcome::UpgradedToRdSh { counter, .. } => counter,
        other => panic!("expected p upgrade, got {other:?}"),
    };

    // T3: rd o.f → upgrading transition RdEx(T2) → RdSh(c) with a fresh
    // global counter value (greater than p's).
    let o_counter = match octet.read_barrier(thread(3), O) {
        BarrierOutcome::UpgradedToRdSh {
            prev_owner,
            counter,
        } => {
            assert_eq!(prev_owner, thread(2));
            counter
        }
        other => panic!("expected o upgrade, got {other:?}"),
    };
    assert!(o_counter > p_counter, "gRdShCnt orders RdSh transitions");
    assert_eq!(
        octet.state_of(O),
        DecodedState::Stable(OctetState::RdSh(o_counter))
    );

    // T4: rd o.f → fence transition (T4.rdShCnt < c), updating T4's counter.
    assert_eq!(
        octet.read_barrier(thread(4), O),
        BarrierOutcome::Fence { counter: o_counter }
    );
    assert_eq!(octet.rd_sh_cnt(thread(4)), o_counter);
    // T4: rd p.q → p's counter is older than T4's view: no fence.
    assert_eq!(octet.read_barrier(thread(4), P), BarrierOutcome::Same);

    // T5: reads o — T5's counter is still behind o's: fence. Afterwards its
    // read of p (older counter) is fence-free: the transitive
    // happens-before via gRdShCnt makes the fence unnecessary (the paper's
    // T5 case, with o and p in swapped roles).
    assert_eq!(
        octet.read_barrier(thread(5), O),
        BarrierOutcome::Fence { counter: o_counter }
    );
    assert_eq!(
        octet.read_barrier(thread(5), P),
        BarrierOutcome::Same,
        "no fence: T5 already saw a newer RdSh counter"
    );
}

/// The same-state fast paths of Figure 2's steady state: once every thread
/// has fenced, further reads are free.
#[test]
fn figure2_steady_state_reads_are_fast() {
    let octet = Protocol::new(1, 4, CoordinationMode::Immediate, NullSink);
    for i in 0..4 {
        octet.thread_begin(thread(i));
    }
    octet.read_barrier(thread(0), O);
    octet.read_barrier(thread(1), O); // upgrade to RdSh
    for i in 0..4u16 {
        octet.read_barrier(thread(i), O); // at most one fence each
    }
    for i in 0..4u16 {
        assert_eq!(
            octet.read_barrier(thread(i), O),
            BarrierOutcome::Same,
            "thread {i} steady-state read must be the fast path"
        );
    }
}
