//! Observability-layer integration tests: accounting invariants that must
//! hold after every drained run, a stress test that hammers `run_end`
//! against the draining replay pool, and the multi-run end-to-end flow with
//! the pipeline and full observability enabled on the second run.
//!
//! The companion *differential* guarantees — no observability level may
//! change violations, static transaction info, or statistics — live in
//! `oracle_threeway.rs` and `proptest_differential.rs`.

use dc_core::{run_doublechecker, DcConfig, DcReport, ExecPlan, ObsLevel, StaticTxInfo};
use dc_runtime::engine::det::Schedule;
use dc_runtime::heap::ObjKind;
use dc_runtime::program::{Op, Program, ProgramBuilder};
use dc_runtime::spec::AtomicitySpec;
use doublechecker_repro as _;
use std::sync::mpsc;
use std::time::Duration;

/// Two atomic methods racing on one shared object — interleaves into a real
/// atomicity violation under most random schedules (same shape as the
/// `dc-core` mode tests).
fn racy_program(iters: u32, pairs: u32) -> (Program, AtomicitySpec) {
    let mut b = ProgramBuilder::new();
    let o = b.object(ObjKind::Plain { fields: 2 });
    let alpha = b.method(
        "alpha",
        vec![Op::Write(o, 0), Op::Compute(5), Op::Read(o, 1)],
    );
    let beta = b.method(
        "beta",
        vec![Op::Write(o, 1), Op::Compute(5), Op::Read(o, 0)],
    );
    let mut entries = Vec::new();
    for p in 0..pairs {
        let t0 = b.method(
            format!("t{}", 2 * p),
            vec![Op::Loop {
                count: iters,
                body: vec![Op::Call(alpha)],
            }],
        );
        let t1 = b.method(
            format!("t{}", 2 * p + 1),
            vec![Op::Loop {
                count: iters,
                body: vec![Op::Call(beta)],
            }],
        );
        entries.push(t0);
        entries.push(t1);
    }
    for &e in &entries {
        b.thread(e);
    }
    let p = b.build().unwrap();
    let spec = AtomicitySpec::excluding(entries);
    (p, spec)
}

/// The accounting invariants every drained run must satisfy, whatever the
/// mode: nothing enqueued is lost, nothing submitted goes unreplayed, and
/// the histograms agree with the counters they time.
fn assert_accounting(report: &DcReport, ctx: &str) {
    let p = report
        .pipeline
        .as_ref()
        .unwrap_or_else(|| panic!("{ctx}: expected a pipeline report"));
    assert_eq!(
        p.graph.ops_enqueued, p.graph.ops_applied,
        "{ctx}: graph ops lost in flight"
    );
    assert_eq!(
        p.graph.queue_depth.current, 0,
        "{ctx}: graph queue not drained"
    );
    assert!(
        p.graph.queue_depth.high_watermark >= p.graph.queue_depth.current,
        "{ctx}: queue high-watermark below final depth"
    );
    assert_eq!(
        p.replay.submitted, p.replay.completed,
        "{ctx}: SCC reports lost between submit and replay"
    );
    assert_eq!(
        p.replay.submitted, report.stats.sccs_to_pcd,
        "{ctx}: obs submit counter disagrees with analysis stats"
    );
    assert_eq!(
        p.replay.queue_depth.current, 0,
        "{ctx}: replay queue not drained"
    );
    assert!(
        p.replay.queue_depth.high_watermark >= p.replay.queue_depth.current,
        "{ctx}: replay high-watermark below final depth"
    );
    assert_eq!(p.checker.runs_begun, 1, "{ctx}: one run begins once");
    assert_eq!(p.checker.runs_ended, 1, "{ctx}: one run ends once");
    if p.level == ObsLevel::Full {
        assert_eq!(
            p.replay.latency.count, p.replay.completed,
            "{ctx}: replay latency histogram disagrees with completion counter"
        );
        assert!(
            p.graph.scc_latency.count >= p.graph.sccs_detected,
            "{ctx}: SCC latency histogram missed detections"
        );
        assert_eq!(
            p.checker.drain_latency.count, p.checker.runs_ended,
            "{ctx}: drain latency histogram disagrees with run counter"
        );
    }
}

#[test]
fn sync_run_balances_its_books_at_full() {
    let (p, spec) = racy_program(10, 1);
    let plan = ExecPlan::Det(Schedule::random(3));
    let report = run_doublechecker(
        &p,
        &spec,
        DcConfig::single_run(plan.coordination()).with_observability(ObsLevel::Full),
        &plan,
    )
    .unwrap();
    assert!(!report.violations.is_empty(), "schedule must interleave");
    assert_accounting(&report, "sync/full");
    let obs = report.pipeline.as_ref().unwrap();
    assert!(obs.graph.ops_enqueued > 0, "graph ops were observed");
    assert!(obs.graph.sccs_detected > 0, "SCCs were observed");
    assert!(
        obs.octet.first_touch + obs.octet.upgrades + obs.octet.fences + obs.octet.conflicts > 0,
        "octet transitions were observed"
    );
    assert_eq!(
        obs.replay.violations, report.stats.pcd.cycles,
        "obs violation counter tracks PCD cycles"
    );
}

#[test]
fn pipelined_run_balances_its_books_at_full() {
    let (p, spec) = racy_program(10, 1);
    let plan = ExecPlan::Det(Schedule::random(3));
    let report = run_doublechecker(
        &p,
        &spec,
        DcConfig::single_run(plan.coordination())
            .with_pipelined(true)
            .with_observability(ObsLevel::Full),
        &plan,
    )
    .unwrap();
    assert!(!report.violations.is_empty(), "schedule must interleave");
    assert_accounting(&report, "pipelined/full");
    let obs = report.pipeline.as_ref().unwrap();
    assert!(obs.graph.batches > 0, "batches flow in pipelined mode");
    assert!(
        obs.graph.queue_depth.high_watermark > 0,
        "ops were in flight at some point"
    );
}

#[test]
fn counters_level_counts_without_clocks_or_trace() {
    let (p, spec) = racy_program(10, 1);
    let plan = ExecPlan::Det(Schedule::random(3));
    let report = run_doublechecker(
        &p,
        &spec,
        DcConfig::single_run(plan.coordination()).with_observability(ObsLevel::Counters),
        &plan,
    )
    .unwrap();
    assert_accounting(&report, "sync/counters");
    let obs = report.pipeline.as_ref().unwrap();
    assert_eq!(obs.level, ObsLevel::Counters);
    assert!(obs.graph.ops_enqueued > 0, "counters are live");
    assert_eq!(obs.graph.scc_latency.count, 0, "no clock reads at counters");
    assert_eq!(obs.replay.latency.count, 0, "no clock reads at counters");
    assert_eq!(obs.checker.drain_latency.count, 0);
    assert_eq!(obs.trace_recorded, 0, "no trace at counters");
    assert!(report.trace.is_empty());
}

#[test]
fn off_level_reports_nothing() {
    let (p, spec) = racy_program(10, 1);
    let plan = ExecPlan::Det(Schedule::random(3));
    let report = run_doublechecker(
        &p,
        &spec,
        DcConfig::single_run(plan.coordination()).with_observability(ObsLevel::Off),
        &plan,
    )
    .unwrap();
    assert!(report.pipeline.is_none());
    assert!(report.trace.is_empty());
}

#[test]
fn full_level_traces_the_run_lifecycle_in_order() {
    let (p, spec) = racy_program(10, 1);
    let plan = ExecPlan::Det(Schedule::random(3));
    let report = run_doublechecker(
        &p,
        &spec,
        DcConfig::single_run(plan.coordination()).with_observability(ObsLevel::Full),
        &plan,
    )
    .unwrap();
    let trace = &report.trace;
    assert!(!trace.is_empty(), "full level records trace events");
    assert!(
        trace.windows(2).all(|w| w[0].seq < w[1].seq),
        "trace sequence numbers are strictly increasing"
    );
    assert_eq!(trace.first().unwrap().kind.as_str(), "run_begin");
    assert_eq!(trace.last().unwrap().kind.as_str(), "run_end");
    let obs = report.pipeline.as_ref().unwrap();
    assert!(
        obs.trace_recorded >= trace.len() as u64,
        "recorded total covers the ring snapshot"
    );
}

/// Stress: four application threads on the real engine, pipelined analysis
/// with the replay pool behind it, a hundred back-to-back runs — every
/// `run_end` must drain completely (no lost SCC reports, queues back to
/// zero) and the whole thing must not hang. The run is wrapped in a thread
/// and a `recv_timeout` so a deadlock fails the test instead of wedging the
/// suite.
#[test]
fn stress_run_end_drains_under_real_thread_hammering() {
    let (done_tx, done_rx) = mpsc::channel();
    std::thread::spawn(move || {
        for round in 0..100u32 {
            let (p, spec) = racy_program(20, 2);
            let plan = ExecPlan::Real;
            let report = run_doublechecker(
                &p,
                &spec,
                DcConfig::single_run(plan.coordination())
                    .with_pipelined(true)
                    .with_observability(ObsLevel::Full),
                &plan,
            )
            .unwrap();
            assert_eq!(
                report.stats.graph_locks, 0,
                "round {round}: app threads locked the graph"
            );
            assert_accounting(&report, &format!("stress round {round}"));
        }
        let _ = done_tx.send(());
    });
    done_rx
        .recv_timeout(Duration::from_secs(120))
        .expect("stress run hung: pipeline failed to drain within 120s");
}

/// Multi-run end-to-end with observability: the first run (ICD only) emits
/// static transaction information; the second run consumes it with the
/// asynchronous pipeline and full observability on. Methods never in an
/// imprecise cycle (the `gamma` below runs on its own thread against a
/// private object) are excluded from the second run's instrumentation, so
/// its instrumented-access counters shrink.
#[test]
fn multi_run_second_run_shrinks_instrumented_accesses_under_pipeline_and_obs() {
    let mut b = ProgramBuilder::new();
    let shared = b.object(ObjKind::Plain { fields: 2 });
    let private = b.object(ObjKind::Plain { fields: 4 });
    let alpha = b.method(
        "alpha",
        vec![Op::Write(shared, 0), Op::Compute(5), Op::Read(shared, 1)],
    );
    let beta = b.method(
        "beta",
        vec![Op::Write(shared, 1), Op::Compute(5), Op::Read(shared, 0)],
    );
    let gamma_body: Vec<Op> = (0..4)
        .flat_map(|f| [Op::Write(private, f), Op::Read(private, f)])
        .collect();
    let gamma = b.method("gamma", gamma_body);
    let t0 = b.method(
        "t0",
        vec![Op::Loop {
            count: 10,
            body: vec![Op::Call(alpha)],
        }],
    );
    let t1 = b.method(
        "t1",
        vec![Op::Loop {
            count: 10,
            body: vec![Op::Call(beta)],
        }],
    );
    let t2 = b.method(
        "t2",
        vec![Op::Loop {
            count: 10,
            body: vec![Op::Call(gamma)],
        }],
    );
    b.thread(t0);
    b.thread(t1);
    b.thread(t2);
    let p = b.build().unwrap();
    let spec = AtomicitySpec::excluding([t0, t1, t2]);

    // Run 1 (×5 trials, per the paper's multi-run methodology): ICD alone,
    // collecting static transaction information.
    let mut info = StaticTxInfo::default();
    let mut first_accesses = 0u64;
    for seed in 0..5u64 {
        let plan = ExecPlan::Det(Schedule::random(seed));
        let first =
            run_doublechecker(&p, &spec, DcConfig::first_run(plan.coordination()), &plan).unwrap();
        assert_eq!(first.stats.log_entries, 0, "first run does not log");
        info.union(&first.static_info);
        first_accesses = first_accesses.max(first.stats.regular_accesses);
    }
    assert!(
        info.methods.contains(&p.method_by_name("alpha").unwrap()),
        "alpha is in an imprecise cycle"
    );
    assert!(
        !info.methods.contains(&p.method_by_name("gamma").unwrap()),
        "gamma never conflicts, so it must stay out of the static info"
    );

    // Run 2: instrument only the implicated transactions, analysis
    // pipelined, observability full.
    let plan = ExecPlan::Det(Schedule::random(3));
    let second = run_doublechecker(
        &p,
        &spec,
        DcConfig::second_run(&info, plan.coordination())
            .with_pipelined(true)
            .with_observability(ObsLevel::Full),
        &plan,
    )
    .unwrap();
    assert!(
        !second.violations.is_empty(),
        "the second run reproduces the violation"
    );
    assert!(
        second.stats.regular_accesses < first_accesses,
        "second run instruments fewer accesses ({} vs {first_accesses})",
        second.stats.regular_accesses
    );
    assert_accounting(&second, "multi-run second run");
    let obs = second.pipeline.as_ref().unwrap();
    assert!(obs.graph.batches > 0, "second run ran pipelined");
    assert!(
        obs.graph.sccs_detected > 0,
        "the second run's cycles were observed"
    );
}
