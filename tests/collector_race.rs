//! The transaction collector vs. in-flight operations.
//!
//! In pipelined mode the collector runs on the graph-owner thread while
//! application threads still have Cross/Upgrade/Fence ops in flight (in
//! pending batches, in the op ring, or parked in the reorder scoreboard).
//! A collector pass must never reclaim a transaction such an op still
//! references in a way that changes the analysis: with the collection
//! cadence forced to its most aggressive setting, the pipelined run must
//! still match the synchronous run bit for bit.

use dc_core::{run_doublechecker, DcConfig, ExecPlan, ObsLevel};
use dc_runtime::engine::det::Schedule;
use dc_runtime::heap::ObjKind;
use dc_runtime::program::{Op, Program, ProgramBuilder};
use dc_runtime::spec::AtomicitySpec;
use dc_workloads::{by_name, Scale};
use doublechecker_repro as _;
use proptest::prelude::*;
use std::collections::HashSet;

/// A `DcConfig` that collects after every transaction finish — the collector
/// runs constantly, maximizing windows where it races in-flight ops.
fn aggressive(plan: &ExecPlan, pipelined: bool) -> DcConfig {
    let mut config = DcConfig::single_run(plan.coordination()).with_pipelined(pipelined);
    config.collect_every = 1;
    config
}

/// Real OS threads, collector on every finish: Octet coordination keeps
/// Cross/Upgrade ops in flight from arbitrary threads while the owner
/// collects. The run must stay off the app-side graph mutex, drain fully,
/// and actually exercise both collection and cross-thread edges.
#[test]
fn aggressive_collection_is_stable_under_real_threads() {
    let wl = by_name("tsp", Scale::Tiny).unwrap();
    let spec = dc_core::initial_spec(&wl.program, &wl.extra_exclusions);
    for round in 0..8 {
        let report = run_doublechecker(
            &wl.program,
            &spec,
            aggressive(&ExecPlan::Real, true).with_observability(ObsLevel::Counters),
            &ExecPlan::Real,
        )
        .unwrap();
        assert_eq!(report.stats.graph_locks, 0, "round {round}");
        assert!(report.stats.collected_txs > 0, "collector never ran");
        let p = report.pipeline.expect("counters level reports");
        assert_eq!(
            p.graph.ops_enqueued, p.graph.ops_applied,
            "pipeline failed to drain (round {round})"
        );
        assert_eq!(p.replay.submitted, p.replay.completed);
    }
}

/// The same aggressive-collection stress with the IDG split across two
/// shard owners: each shard runs its own collector at the most hostile
/// cadence while the router migrates components between shards. The run
/// must stay off the app-side graph mutex, drain every shard fully, and
/// report no structural op-stream error.
#[test]
fn aggressive_collection_is_stable_with_sharded_owners() {
    let wl = by_name("tsp", Scale::Tiny).unwrap();
    let spec = dc_core::initial_spec(&wl.program, &wl.extra_exclusions);
    for round in 0..8 {
        let report = run_doublechecker(
            &wl.program,
            &spec,
            aggressive(&ExecPlan::Real, true)
                .with_shards(2)
                .with_observability(ObsLevel::Counters),
            &ExecPlan::Real,
        )
        .unwrap();
        assert_eq!(report.stats.graph_locks, 0, "round {round}");
        assert!(report.stats.collected_txs > 0, "collector never ran");
        assert_eq!(report.pipeline_error, None, "round {round}");
        let p = report.pipeline.expect("counters level reports");
        assert_eq!(
            p.graph.ops_enqueued, p.graph.ops_applied,
            "sharded pipeline failed to drain (round {round})"
        );
        assert_eq!(p.replay.submitted, p.replay.completed);
        for (idx, depth) in p.graph.shard_depth.iter().enumerate() {
            assert_eq!(
                depth.current, 0,
                "shard {idx} ring not drained (round {round})"
            );
        }
    }
}

/// One primitive op of a generated atomic method. The mix is chosen to
/// provoke every edge-producing Octet transition: plain reads/writes create
/// conflicting (Cross) and upgrading transitions, the lock section adds
/// fence-heavy read-shared traffic.
#[derive(Clone, Debug)]
enum GenOp {
    Read(u8, u8),
    Write(u8, u8),
    Compute(u8),
    LockedRmw(u8),
}

fn gen_method() -> impl Strategy<Value = Vec<GenOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..2, 0u8..2).prop_map(|(o, f)| GenOp::Read(o, f)),
            (0u8..2, 0u8..2).prop_map(|(o, f)| GenOp::Write(o, f)),
            (1u8..20).prop_map(GenOp::Compute),
            (0u8..2).prop_map(GenOp::LockedRmw),
        ],
        1..6,
    )
}

fn gen_program() -> impl Strategy<Value = (Vec<Vec<GenOp>>, usize, u8)> {
    (
        prop::collection::vec(gen_method(), 2..5),
        2usize..4, // threads
        1u8..6,    // loop iterations
    )
}

fn build(methods: &[Vec<GenOp>], threads: usize, iters: u8) -> (Program, AtomicitySpec) {
    let mut b = ProgramBuilder::new();
    let shared: Vec<_> = (0..2)
        .map(|_| b.object(ObjKind::Plain { fields: 2 }))
        .collect();
    let lock = b.object(ObjKind::Monitor);
    let method_ids: Vec<_> = methods
        .iter()
        .enumerate()
        .map(|(i, ops)| {
            let body: Vec<Op> = ops
                .iter()
                .flat_map(|op| match *op {
                    GenOp::Read(o, f) => vec![Op::Read(shared[o as usize], u32::from(f))],
                    GenOp::Write(o, f) => vec![Op::Write(shared[o as usize], u32::from(f))],
                    GenOp::Compute(u) => vec![Op::Compute(u32::from(u))],
                    GenOp::LockedRmw(o) => vec![
                        Op::Acquire(lock),
                        Op::Read(shared[o as usize], 0),
                        Op::Write(shared[o as usize], 0),
                        Op::Release(lock),
                    ],
                })
                .collect();
            b.method(format!("gen{i}"), body)
        })
        .collect();
    let mut entries = Vec::new();
    for t in 0..threads {
        let body = vec![Op::Loop {
            count: u32::from(iters),
            body: method_ids
                .iter()
                .enumerate()
                .filter(|(k, _)| (k + t) % 2 == 0 || threads == 2)
                .map(|(_, &m)| Op::Call(m))
                .collect(),
        }];
        entries.push(b.method(format!("entry{t}"), body));
    }
    for &e in &entries {
        b.thread(e);
    }
    let program = b.build().expect("generated program is valid");
    let spec = AtomicitySpec::excluding(entries);
    (program, spec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// On any generated program and schedule, collecting after *every*
    /// finish while ops are in flight changes nothing: the pipelined run
    /// matches the synchronous run at the same cadence — violations, static
    /// transaction info, and every stat except thread-timing noise.
    #[test]
    fn racing_collector_matches_synchronous((methods, threads, iters) in gen_program(), seed in 0u64..1000) {
        let (program, spec) = build(&methods, threads, iters);
        let plan = ExecPlan::Det(Schedule::random(seed));
        let sync = run_doublechecker(&program, &spec, aggressive(&plan, false), &plan)
            .expect("sync run");
        let piped = run_doublechecker(&program, &spec, aggressive(&plan, true), &plan)
            .expect("pipelined run");
        let sync_keys: HashSet<_> = sync.violations.iter().map(|v| v.static_key()).collect();
        let piped_keys: HashSet<_> = piped.violations.iter().map(|v| v.static_key()).collect();
        prop_assert_eq!(sync_keys, piped_keys, "violation sets diverge");
        prop_assert_eq!(&sync.static_info, &piped.static_info, "static info diverges");
        prop_assert_eq!(piped.stats.graph_locks, 0u64, "app threads locked the graph");
        // Cycle-relevant state must be identical (SCCs cannot be lost), but
        // the raw cross-edge count may run slightly lower pipelined: an
        // in-flight edge whose source was already collected — possible only
        // once that source is finished, unreachable, and provably outside
        // any future cycle — is dropped at apply time.
        prop_assert_eq!(sync.stats.icd_sccs, piped.stats.icd_sccs, "SCCs lost or invented");
        prop_assert!(
            piped.stats.idg_cross_edges <= sync.stats.idg_cross_edges,
            "pipelined mode invented cross edges ({} > {})",
            piped.stats.idg_cross_edges,
            sync.stats.idg_cross_edges
        );
    }

    /// Shard routing is a pure function of the op stream: two runs of the
    /// identical program, schedule, and shard count take the same union
    /// decisions, trigger the same merges, and produce the same analysis —
    /// even with the collector at its most aggressive cadence. (Replay-pool
    /// workers race for SCCs, so violations compare as static-key sets and
    /// the timing-dependent reclaim count is scrubbed.)
    #[test]
    fn shard_routing_is_a_pure_function_of_the_op_stream((methods, threads, iters) in gen_program(), seed in 0u64..1000) {
        use dc_core::DcStats;
        let (program, spec) = build(&methods, threads, iters);
        let plan = ExecPlan::Det(Schedule::random(seed));
        let config = || {
            aggressive(&plan, true)
                .with_shards(4)
                .with_observability(ObsLevel::Counters)
        };
        let a = run_doublechecker(&program, &spec, config(), &plan).expect("first run");
        let b = run_doublechecker(&program, &spec, config(), &plan).expect("second run");
        let keys = |r: &dc_core::DcReport| -> HashSet<_> {
            r.violations.iter().map(|v| v.static_key()).collect()
        };
        prop_assert_eq!(keys(&a), keys(&b), "violation sets diverge between runs");
        prop_assert_eq!(&a.static_info, &b.static_info, "static info diverges");
        let scrub = |mut s: DcStats| { s.collected_txs = 0; s };
        prop_assert_eq!(scrub(a.stats), scrub(b.stats), "stats diverge between runs");
        let pa = a.pipeline.expect("counters level reports");
        let pb = b.pipeline.expect("counters level reports");
        prop_assert_eq!(
            pa.graph.shard_merges, pb.graph.shard_merges,
            "merge sequence diverges: routing depended on something besides the op stream"
        );
        prop_assert_eq!(a.pipeline_error, None);
        prop_assert_eq!(b.pipeline_error, None);
    }
}
