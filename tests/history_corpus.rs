//! Replays every committed anomaly history under `tests/histories/` and
//! asserts all three checkers agree with the verdict recorded in the file —
//! under shards {1, 2} × both pipelined op transports.
//!
//! These are the repo's strongest differential tests: the expected verdict
//! of a lost update or a write skew is database folklore, independent of
//! anything this implementation does.

mod common;

use dc_histories::{lower, Expected, History};
use doublechecker_repro as _;

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("histories")
}

fn corpus() -> Vec<(std::path::PathBuf, History)> {
    let mut entries: Vec<_> = std::fs::read_dir(corpus_dir())
        .expect("tests/histories exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    entries.sort();
    entries
        .into_iter()
        .map(|path| {
            let text = std::fs::read_to_string(&path).expect("readable history");
            let history =
                History::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            (path, history)
        })
        .collect()
}

#[test]
fn corpus_covers_the_anomaly_taxonomy() {
    let names: Vec<String> = corpus()
        .iter()
        .map(|(_, h)| h.name.clone().expect("corpus entries are named"))
        .collect();
    for required in [
        "lost-update",
        "write-skew",
        "fractured-read",
        "long-fork",
        "serial-control",
        "interleaved-control",
    ] {
        assert!(
            names.iter().any(|n| n == required),
            "missing corpus entry {required}; have {names:?}"
        );
    }
    assert!(names.len() >= 6);
}

#[test]
fn every_corpus_entry_matches_its_expected_verdict_on_all_checkers() {
    let entries = corpus();
    assert!(entries.len() >= 6);
    for (path, history) in entries {
        let expected = history.expected.unwrap_or_else(|| {
            panic!("{}: corpus entries must declare 'expected'", path.display())
        });
        let lowered = lower(&history).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        common::assert_history_verdict(
            &path.display().to_string(),
            &lowered,
            expected == Expected::Violation,
        );
    }
}

#[test]
fn corpus_entries_round_trip_through_the_serializer() {
    for (path, history) in corpus() {
        let back = History::parse(&history.to_json())
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(history, back, "{}", path.display());
    }
}
