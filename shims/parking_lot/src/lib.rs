//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API:
//! `Mutex::lock` returns a guard directly (a poisoned lock yields the inner
//! guard — panic propagation already unwinds the test), and `Condvar::wait`
//! takes `&mut MutexGuard` instead of consuming it.

#![allow(clippy::all, clippy::pedantic)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock with `parking_lot`'s panic-free `lock()` API.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds `Option` internally so [`Condvar::wait`] can move the underlying
/// std guard out and back without consuming this wrapper.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of [`Condvar::wait_for`]: whether the wait timed out.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable with `parking_lot`'s `wait(&mut guard)` API.
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically releases the guarded lock and waits for a notification.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Atomically releases the guarded lock and waits for a notification or
    /// until `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiter; returns whether a thread was woken (always reported
    /// true — std does not expose the count).
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wakes all waiters; returns the woken count (std does not expose it,
    /// so the shim reports 0).
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            *done = true;
            drop(done);
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        h.join().unwrap();
        assert!(*done);
    }
}
