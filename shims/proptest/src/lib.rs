//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Provides a deterministic property-testing harness with the same surface
//! syntax as proptest (`proptest!` blocks, `Strategy` combinators,
//! `prop_oneof!`, `prop::collection::vec`, `prop_assert!`). Generation is
//! deterministic per (test name, case index), so failures reproduce across
//! runs without a persistence file.
//!
//! Shrinking: strategies may implement [`Strategy::shrink`], and the
//! harness greedily walks a failing input to a local minimum before
//! reporting it (bounded by a candidate budget). Ranges shrink toward
//! their lower bound, vectors by dropping and shrinking elements, tuples
//! component-wise; combinators that lose provenance (`prop_map`,
//! `prop_flat_map`, `prop_oneof!`) do not shrink — tests that care about
//! minimal witnesses should implement [`Strategy`] directly on a custom
//! type.
//!
//! The `PROPTEST_CASES` environment variable overrides every block's case
//! count (matching upstream proptest), so CI can raise coverage without
//! touching test sources.

#![allow(clippy::all, clippy::pedantic)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator handed to strategies (xoshiro256**, SplitMix64
/// seeding — same construction as the workspace `rand` shim).
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator for one test case, keyed by test name and index.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut sm = h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut s = [next(), next(), next(), next()];
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        TestRng { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform draw in `[0, bound)` via rejection-free multiply-shift.
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value: Debug;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simplifications of `value`, simplest first. The harness
    /// keeps a candidate only if the property still fails on it, so
    /// over-approximating is safe; the default is "cannot shrink".
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn StrategyObject<T>>);

/// Object-safe core of [`Strategy`], used behind `BoxedStrategy`.
trait StrategyObject<T> {
    fn generate_obj(&self, rng: &mut TestRng) -> T;
    fn shrink_obj(&self, value: &T) -> Vec<T>;
}

impl<S: Strategy> StrategyObject<S::Value> for S {
    fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
    fn shrink_obj(&self, value: &S::Value) -> Vec<S::Value> {
        self.shrink(value)
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_obj(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        self.0.shrink_obj(value)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized + Debug {
    /// Strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for uniformly random values of a primitive type.
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

impl Strategy for AnyStrategy<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyStrategy<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyStrategy(std::marker::PhantomData)
    }
}

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy(std::marker::PhantomData)
            }
        }
    )*};
}
any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Shrink candidates for a value drawn from `[lo, …]`: the bound itself,
/// the halfway point, and one step down — ascending, so the harness tries
/// the simplest first.
fn shrink_toward(lo: u64, v: u64) -> Vec<u64> {
    if v <= lo {
        return Vec::new();
    }
    let mut c = vec![lo, lo + (v - lo) / 2, v - 1];
    c.dedup();
    c.retain(|&x| x < v);
    c
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(self.start as u64, *value as u64)
                    .into_iter()
                    .map(|x| x as $t)
                    .collect()
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                assert!(lo <= hi, "empty range strategy");
                let span = hi.wrapping_sub(lo).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    rng.next_u64() as $t
                } else {
                    lo.wrapping_add(rng.below(span)) as $t
                }
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(*self.start() as u64, *value as u64)
                    .into_iter()
                    .map(|x| x as $t)
                    .collect()
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($name:ident, $val:ident, $idx:tt)),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone),+
        {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
            #[allow(non_snake_case)]
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let ($($name,)+) = self;
                let ($($val,)+) = value;
                let mut out = Vec::new();
                $(
                    for cand in $name.shrink($val) {
                        let mut t = value.clone();
                        t.$idx = cand;
                        out.push(t);
                    }
                )+
                out
            }
        }
    };
}
tuple_strategy!((A, a0, 0));
tuple_strategy!((A, a0, 0), (B, a1, 1));
tuple_strategy!((A, a0, 0), (B, a1, 1), (C, a2, 2));
tuple_strategy!((A, a0, 0), (B, a1, 1), (C, a2, 2), (D, a3, 3));
tuple_strategy!((A, a0, 0), (B, a1, 1), (C, a2, 2), (D, a3, 3), (E, a4, 4));
tuple_strategy!(
    (A, a0, 0),
    (B, a1, 1),
    (C, a2, 2),
    (D, a3, 3),
    (E, a4, 4),
    (F, a5, 5)
);

/// Strategy namespace mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates vectors of values from `element` with lengths in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S>
        where
            S::Value: Clone,
        {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = self.size.draw(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                // Drop one element at a time (respecting the minimum
                // length), then shrink elements in place.
                if value.len() > self.size.min_len() {
                    for i in 0..value.len() {
                        let mut v = value.clone();
                        v.remove(i);
                        out.push(v);
                    }
                }
                for i in 0..value.len() {
                    for cand in self.element.shrink(&value[i]) {
                        let mut v = value.clone();
                        v[i] = cand;
                        out.push(v);
                    }
                }
                out
            }
        }
    }
}

/// Length distribution for collection strategies.
pub struct SizeRange {
    lo: usize,
    hi_excl: usize,
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        assert!(self.lo < self.hi_excl, "empty size range");
        self.lo + rng.below((self.hi_excl - self.lo) as u64) as usize
    }

    /// The smallest length this range permits (the shrink floor).
    fn min_len(&self) -> usize {
        self.lo
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi_excl: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_excl: r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_excl: n + 1,
        }
    }
}

/// Uniform choice between boxed alternative strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Builds a union from pre-boxed alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Per-`proptest!`-block configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Resolves the case count for a block: the `PROPTEST_CASES` environment
/// variable wins when set to a positive integer, otherwise the block's
/// configured count.
pub fn effective_cases(config: &ProptestConfig) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.trim().parse::<u32>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(config.cases)
}

/// Upper bound on candidate evaluations spent shrinking one failure.
const SHRINK_BUDGET: usize = 1000;

/// Runs `body` for each case. On failure the input is greedily shrunk —
/// repeatedly replaced by its first still-failing candidate until no
/// candidate fails or the budget runs out — and the minimal witness is
/// reported alongside the original. Used by the `proptest!` macro
/// expansion; not intended for direct calls.
pub fn run_cases<V: Debug>(
    test_name: &str,
    config: ProptestConfig,
    strategy: &dyn StrategyDyn<V>,
    body: &dyn Fn(V),
) {
    let run = |value: V| std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(value)));
    for case in 0..effective_cases(&config) {
        let mut rng = TestRng::for_case(test_name, case);
        let value = strategy.generate_dyn(&mut rng);
        let desc = format!("{value:?}");
        // Compute candidates before the body consumes the value, so the
        // shrink loop never needs `V: Clone`.
        let mut frontier = strategy.shrink_dyn(&value);
        let payload = match run(value) {
            Ok(()) => continue,
            Err(payload) => payload,
        };
        let mut best_desc = desc.clone();
        let mut best_payload = payload;
        let mut budget = SHRINK_BUDGET;
        loop {
            let mut improved = None;
            for cand in frontier {
                if budget == 0 {
                    break;
                }
                budget -= 1;
                let cand_desc = format!("{cand:?}");
                let cand_frontier = strategy.shrink_dyn(&cand);
                if let Err(p) = run(cand) {
                    improved = Some((cand_desc, p, cand_frontier));
                    break;
                }
            }
            match improved {
                Some((d, p, f)) => {
                    best_desc = d;
                    best_payload = p;
                    frontier = f;
                }
                None => break,
            }
            if budget == 0 {
                break;
            }
        }
        if best_desc == desc {
            eprintln!("proptest: test '{test_name}' failed at case {case} with input: {desc}");
        } else {
            eprintln!(
                "proptest: test '{test_name}' failed at case {case} with input: {desc}\n\
                 proptest: minimal failing input after shrinking: {best_desc}"
            );
        }
        std::panic::resume_unwind(best_payload);
    }
}

/// Object-safe generation/shrinking hook used by [`run_cases`].
pub trait StrategyDyn<V> {
    /// Draws one value.
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
    /// Candidate simplifications of `value`, simplest first.
    fn shrink_dyn(&self, value: &V) -> Vec<V>;
}

impl<S: Strategy> StrategyDyn<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
    fn shrink_dyn(&self, value: &S::Value) -> Vec<S::Value> {
        self.shrink(value)
    }
}

/// Defines property tests: each `#[test] fn name(pat in strategy, ...)
/// { body }` runs `ProptestConfig::cases` generated cases. Unlike
/// upstream, the `#[test]` attribute must be written on every function —
/// the macro passes attributes through verbatim rather than adding its
/// own (which would register each test twice).
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let strategy = ($($strat,)+);
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(
                concat!(module_path!(), "::", stringify!($name)),
                config,
                &strategy,
                &|($($pat,)+)| $body,
            );
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property test (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test (panics like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniformly picks one of several strategy arms (all arms are boxed; weights
/// like `2 => strat` are accepted and ignored — selection stays uniform).
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:literal => $strat:expr ),+ $(,)? ) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($strat) ),+ ])
    };
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($strat) ),+ ])
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn deterministic_per_case() {
        let strat = prop::collection::vec(0u32..100, 1..10);
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = (5u64..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let w = (3u8..=9).generate(&mut rng);
            assert!((3..=9).contains(&w));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_roundtrip(xs in prop::collection::vec(any::<bool>(), 0..8), n in 1usize..5) {
            prop_assert!(xs.len() < 8);
            prop_assert!(n >= 1 && n < 5);
        }

        #[test]
        fn flat_map_dependent((n, v) in (2usize..10).prop_flat_map(|n| {
            (Just(n), prop::collection::vec(0u64..(n as u64), 0..20))
        })) {
            for x in &v {
                prop_assert!((*x as usize) < n);
            }
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        let mut rng = TestRng::for_case("arms", 0);
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn range_shrink_moves_toward_the_lower_bound() {
        let strat = 5u32..100;
        let cands = strat.shrink(&40);
        assert!(!cands.is_empty());
        assert!(cands.iter().all(|&c| (5..40).contains(&c)));
        assert_eq!(cands[0], 5, "the bound itself is tried first");
        assert!(strat.shrink(&5).is_empty(), "the minimum cannot shrink");
    }

    #[test]
    fn vec_shrink_respects_the_minimum_length() {
        let strat = prop::collection::vec(0u32..10, 2..6);
        let cands = strat.shrink(&vec![3, 0]);
        // Length is already at the floor: only element-wise shrinks remain.
        assert!(cands.iter().all(|c| c.len() == 2));
        assert!(cands.contains(&vec![0, 0]));
        let cands = strat.shrink(&vec![3, 0, 0]);
        assert!(cands.iter().any(|c| c.len() == 2), "drops one element");
    }

    #[test]
    fn tuple_shrink_is_component_wise() {
        let strat = (1u32..10, 0u8..4);
        let cands = crate::Strategy::shrink(&strat, &(9, 3));
        assert!(cands.iter().any(|&(a, b)| a < 9 && b == 3));
        assert!(cands.iter().any(|&(a, b)| a == 9 && b < 3));
    }

    #[test]
    fn failing_case_shrinks_to_the_minimal_witness() {
        use std::sync::atomic::{AtomicU32, Ordering};
        static LAST_FAILING: AtomicU32 = AtomicU32::new(u32::MAX);
        let result = std::panic::catch_unwind(|| {
            crate::run_cases(
                "shrink_convergence",
                ProptestConfig::with_cases(32),
                &(0u32..64),
                &|v| {
                    if v >= 32 {
                        // The greedy loop only advances through failing
                        // candidates, so the last recorded value is the
                        // final witness.
                        LAST_FAILING.store(v, Ordering::SeqCst);
                        panic!("too big");
                    }
                },
            );
        });
        assert!(
            result.is_err(),
            "the property must fail somewhere in 32..64"
        );
        assert_eq!(LAST_FAILING.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn failing_vec_shrinks_to_a_single_offending_element() {
        use std::sync::Mutex;
        static LAST_FAILING: Mutex<Vec<u32>> = Mutex::new(Vec::new());
        let result = std::panic::catch_unwind(|| {
            crate::run_cases(
                "vec_shrink_convergence",
                ProptestConfig::with_cases(64),
                &prop::collection::vec(0u32..10, 0..8),
                &|v: Vec<u32>| {
                    if v.iter().any(|&x| x >= 5) {
                        *LAST_FAILING.lock().unwrap() = v.clone();
                        panic!("contains a large element");
                    }
                },
            );
        });
        assert!(
            result.is_err(),
            "some generated vec contains an element >= 5"
        );
        assert_eq!(*LAST_FAILING.lock().unwrap(), vec![5]);
    }

    #[test]
    fn proptest_cases_env_var_overrides_the_config() {
        // Process-global env: exercise the parser on the documented
        // variable, then restore whatever was set before.
        let saved = std::env::var("PROPTEST_CASES").ok();
        let config = ProptestConfig::with_cases(64);
        std::env::set_var("PROPTEST_CASES", "7");
        assert_eq!(crate::effective_cases(&config), 7);
        std::env::set_var("PROPTEST_CASES", "0");
        assert_eq!(crate::effective_cases(&config), 64, "zero is ignored");
        std::env::set_var("PROPTEST_CASES", "banana");
        assert_eq!(crate::effective_cases(&config), 64, "junk is ignored");
        match saved {
            Some(v) => std::env::set_var("PROPTEST_CASES", v),
            None => std::env::remove_var("PROPTEST_CASES"),
        }
    }
}
