//! Offline shim for the subset of `serde_json` this workspace uses: a JSON
//! [`Value`] tree, a `json!` object macro, `Display`-based serialization,
//! and a small recursive-descent parser. There is no serde integration —
//! types that need JSON round-trips implement `From<T> for Value` and parse
//! from a [`Value`] explicitly.

#![allow(clippy::all, clippy::pedantic)]

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document node.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64; integers up to 2^53 are exact).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; key order is sorted (BTreeMap) for stable output.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a u64, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an f64, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object map, if it is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object member lookup (`value["key"]`-style, by method).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(v as f64)
            }
        }
    )*};
}

from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(f64::from(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl<T> From<Vec<T>> for Value
where
    Value: From<T>,
{
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Value::from).collect())
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for Error {}

/// Parses a JSON document into a [`Value`].
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Serializes a value (anything convertible into [`Value`]) compactly.
pub fn to_string<T>(value: T) -> Result<String, Error>
where
    Value: From<T>,
{
    Ok(Value::from(value).to_string())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> Error {
        Error {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, token: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            Ok(())
        } else {
            Err(self.err("unexpected token"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.eat("null").map(|()| Value::Null),
            Some(b't') => self.eat("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat("\"")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| self.err("invalid number"))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat("[")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat("{")?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(":")?;
            self.skip_ws();
            let value = self.value()?;
            members.insert(key, value);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Builds a [`Value`] from JSON-ish syntax. Supports flat or nested object
/// literals whose values are arbitrary expressions converted via
/// `Value::from` (nest by writing `json!({...})` as the value expression).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $val:expr),* $(,)? }) => {{
        let mut members = ::std::collections::BTreeMap::new();
        $( members.insert(($key).to_string(), $crate::Value::from($val)); )*
        $crate::Value::Object(members)
    }};
    ($other:expr) => {
        $crate::Value::from($other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let v = json!({
            "name": "bench",
            "ok": true,
            "count": 3u64,
            "ratio": 1.5f64,
            "tags": vec!["a", "b"],
        });
        let text = v.to_string();
        let back = from_str(&text).unwrap();
        assert_eq!(v, back);
        assert_eq!(back.get("count").unwrap().as_u64(), Some(3));
        assert_eq!(back.get("tags").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn escapes_strings() {
        let v = Value::String("a\"b\\c\nd".to_string());
        let text = v.to_string();
        assert_eq!(from_str(&text).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_null() {
        let v = from_str(" { \"x\" : null , \"y\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("x"), Some(&Value::Null));
        assert_eq!(v.get("y").unwrap().as_array().unwrap().len(), 2);
    }
}
