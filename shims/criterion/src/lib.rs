//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! Runs each benchmark for the configured measurement window after a warm-up
//! window and prints mean time per iteration. No statistical analysis, plots,
//! or baseline comparison — just enough to keep `cargo bench` targets
//! compiling and producing comparable wall-clock numbers offline.

#![allow(clippy::all, clippy::pedantic)]

use std::time::{Duration, Instant};

/// Benchmark harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up window.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark and prints its mean time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            warm_up: self.warm_up_time,
            measurement: self.measurement_time,
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let per_iter = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.total / (b.iters as u32).max(1)
        };
        println!("{id:<50} {per_iter:>12.2?}/iter ({} iters)", b.iters);
        self
    }

    /// Compatibility no-op (the real criterion parses CLI args here).
    pub fn final_summary(&mut self) {}
}

/// Passed to benchmark closures; drives timing loops.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    total: Duration,
    iters: u64,
}

/// How much setup output to batch per timing measurement.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs; large batches.
    SmallInput,
    /// Large per-iteration inputs; batch size of one.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

impl Bencher {
    /// Times `routine` repeatedly over the measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            std::hint::black_box(routine());
        }
        let per_sample = self.measurement / self.samples as u32;
        for _ in 0..self.samples {
            let mut n = 0u64;
            let start = Instant::now();
            let end = start + per_sample;
            while Instant::now() < end {
                std::hint::black_box(routine());
                n += 1;
            }
            self.total += start.elapsed();
            self.iters += n;
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let batch = match size {
            BatchSize::SmallInput => 64,
            BatchSize::LargeInput | BatchSize::PerIteration => 1,
        };
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        let per_sample = self.measurement / self.samples as u32;
        for _ in 0..self.samples {
            let mut sample_time = Duration::ZERO;
            let mut n = 0u64;
            while sample_time < per_sample {
                let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
                let start = Instant::now();
                for input in inputs {
                    std::hint::black_box(routine(input));
                    n += 1;
                }
                sample_time += start.elapsed();
            }
            self.total += sample_time;
            self.iters += n;
        }
    }
}

/// Re-export so call sites can use `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group: a function running each target.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; skip measuring.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_counts_iterations() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("shim/self_test", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn iter_batched_consumes_setup_output() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("shim/batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
