//! Offline shim for the subset of `crossbeam` this workspace uses:
//! multi-producer multi-consumer channels with the `crossbeam_channel` API
//! shape, backed by `std::sync::mpsc`. Senders are cloneable as in std;
//! receivers are made shareable by serializing consumers through a mutex —
//! each message is still delivered to exactly one consumer.

#![allow(clippy::all, clippy::pedantic)]

/// Multi-producer multi-consumer channels (`crossbeam::channel` API subset).
pub mod channel {
    use std::sync::{mpsc, Arc, Mutex};

    /// Sending half; cloneable across producer threads.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, failing only when all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|e| SendError(e.0))
        }
    }

    /// Receiving half; cloneable — consumers take turns under a mutex.
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        fn inner(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.0.lock().unwrap_or_else(|e| e.into_inner())
        }

        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner().recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner().try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking iterator over incoming messages, ending at disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter(self)
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T>(&'a Receiver<T>);

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.0.recv().ok()
        }
    }

    /// Error: the receiving side disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error: all senders disconnected and the queue is empty.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error from [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// All senders disconnected and the queue is empty.
        Disconnected,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }

    /// Creates a bounded channel (backed by `mpsc::sync_channel`).
    pub fn bounded<T>(cap: usize) -> (SyncSender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (SyncSender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }

    /// Sending half of a bounded channel.
    pub struct SyncSender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for SyncSender<T> {
        fn clone(&self) -> Self {
            SyncSender(self.0.clone())
        }
    }

    impl<T> SyncSender<T> {
        /// Sends `value`, blocking while the channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|e| SendError(e.0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn multi_producer_single_consumer() {
        let (tx, rx) = channel::unbounded();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(tx);
        let mut got: Vec<i32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn recv_fails_after_disconnect() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
