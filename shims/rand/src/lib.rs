//! Offline shim for the subset of `rand` 0.8 this workspace uses:
//! `SmallRng`/`StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range,
//! gen_bool}`. The generator is xoshiro256** seeded via SplitMix64 —
//! deterministic across platforms, which the seeded-schedule tests rely on.

#![allow(clippy::all, clippy::pedantic)]

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64) / ((1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types uniformly samplable over their whole domain (`Rng::gen`).
pub trait Standard {
    /// Samples one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) / ((1u64 << 53) as f64)
    }
}

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Samples uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128) - (self.start as u128);
                let offset = (rng.next_u64() as u128) % span;
                (self.start as u128 + offset) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as u128) - (start as u128) + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as u128 + offset) as $t
            }
        }
    )*};
}

sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the shim's small, fast, deterministic generator.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }

    /// Alias: the shim backs `StdRng` with the same generator.
    pub type StdRng = SmallRng;
}

pub use rngs::SmallRng as _ShimSmallRngReexportGuard;

/// `rand::prelude` equivalent.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1u64..=4);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.gen::<u64>()).collect::<Vec<_>>(),
            (0..8).map(|_| b.gen::<u64>()).collect::<Vec<_>>()
        );
    }
}
